open Ppp_util

let check_float = Alcotest.(check (float 1e-9))

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different seeds differ" false
    (List.init 4 (fun _ -> Rng.bits64 a) = List.init 4 (fun _ -> Rng.bits64 b))

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_pow2 () =
  let rng = Rng.create ~seed:4 in
  for _ = 1 to 1_000 do
    let v = Rng.int rng 64 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 64)
  done

let test_rng_int_in () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 1_000 do
    let v = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in range" true (v >= -5 && v <= 5)
  done

let test_rng_rejects_bad_bounds () =
  let rng = Rng.create ~seed:6 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_split_independent () =
  let a = Rng.create ~seed:8 in
  let b = Rng.split a in
  let xs = List.init 8 (fun _ -> Rng.bits64 a) in
  let ys = List.init 8 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "streams differ" false (xs = ys)

let test_rng_uniformity () =
  (* Chi-square-ish sanity: each of 8 buckets gets 10-15% of 40000 draws. *)
  let rng = Rng.create ~seed:9 in
  let buckets = Array.make 8 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let i = Rng.int rng 8 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "roughly uniform" true
        (c > n / 10 && c < n * 15 / 100))
    buckets

let test_rng_float_range () =
  let rng = Rng.create ~seed:10 in
  for _ = 1 to 1_000 do
    let x = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_rng_shuffle_permutes () =
  let rng = Rng.create ~seed:11 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_rng_exponential_positive () =
  let rng = Rng.create ~seed:12 in
  let acc = ref 0.0 in
  for _ = 1 to 5_000 do
    let x = Rng.exponential rng ~mean:3.0 in
    Alcotest.(check bool) "positive" true (x >= 0.0);
    acc := !acc +. x
  done;
  let mean = !acc /. 5000.0 in
  Alcotest.(check bool) "mean near 3" true (mean > 2.7 && mean < 3.3)

(* The pre-rewrite Int64 implementation of xoshiro256**, kept verbatim as
   the oracle for the native-int generator: every consumer-visible draw must
   match it bit for bit, or every seeded golden in the repo shifts. *)
module Rng_ref = struct
  type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

  let golden = 0x9E3779B97F4A7C15L

  let splitmix64 state =
    let z = Int64.add !state golden in
    state := z;
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let create ~seed =
    let state = ref (Int64.of_int seed) in
    let s0 = splitmix64 state in
    let s1 = splitmix64 state in
    let s2 = splitmix64 state in
    let s3 = splitmix64 state in
    { s0; s1; s2; s3 }

  let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

  let bits64 t =
    let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
    let tmp = Int64.shift_left t.s1 17 in
    t.s2 <- Int64.logxor t.s2 t.s0;
    t.s3 <- Int64.logxor t.s3 t.s1;
    t.s1 <- Int64.logxor t.s1 t.s2;
    t.s0 <- Int64.logxor t.s0 t.s3;
    t.s2 <- Int64.logxor t.s2 tmp;
    t.s3 <- rotl t.s3 45;
    result

  let split t =
    let state = ref (bits64 t) in
    let s0 = splitmix64 state in
    let s1 = splitmix64 state in
    let s2 = splitmix64 state in
    let s3 = splitmix64 state in
    { s0; s1; s2; s3 }

  let nonneg t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

  let int t n =
    let bound = nonneg t in
    if n land (n - 1) = 0 then bound land (n - 1)
    else
      let limit = max_int - (max_int mod n) in
      let rec sample v = if v >= limit then sample (nonneg t) else v mod n in
      sample bound

  let float t x =
    let mantissa = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
    x *. (mantissa *. 0x1.0p-53)

  let bool t = Int64.logand (bits64 t) 1L = 1L
  let byte t = Int64.to_int (Int64.logand (bits64 t) 0xFFL)
end

let test_rng_matches_int64_reference () =
  List.iter
    (fun seed ->
      let a = Rng.create ~seed and b = Rng_ref.create ~seed in
      for i = 1 to 2_000 do
        (* Interleave every consumer so each one's bit extraction is pinned,
           not just the raw stream. *)
        match i mod 6 with
        | 0 ->
            Alcotest.(check int64) "bits64" (Rng_ref.bits64 b) (Rng.bits64 a)
        | 1 ->
            let n = 1 + (i mod 1000) in
            Alcotest.(check int) "int" (Rng_ref.int b n) (Rng.int a n)
        | 2 -> Alcotest.(check int) "byte" (Rng_ref.byte b) (Rng.byte a)
        | 3 -> Alcotest.(check bool) "bool" (Rng_ref.bool b) (Rng.bool a)
        | 4 ->
            Alcotest.(check (float 0.0)) "float" (Rng_ref.float b 1.0)
              (Rng.float a 1.0)
        | _ ->
            (* Powers of two take the masking fast path. *)
            Alcotest.(check int) "int pow2" (Rng_ref.int b 4096) (Rng.int a 4096)
      done)
    [ 0; 1; 42; 0x51CC5EED; max_int / 3 ]

let test_rng_split_matches_reference () =
  let a = Rng.create ~seed:99 and b = Rng_ref.create ~seed:99 in
  ignore (Rng.bits64 a : int64);
  ignore (Rng_ref.bits64 b : int64);
  let a' = Rng.split a and b' = Rng_ref.split b in
  for _ = 1 to 64 do
    Alcotest.(check int64) "split stream" (Rng_ref.bits64 b') (Rng.bits64 a');
    Alcotest.(check int64) "parent stream" (Rng_ref.bits64 b) (Rng.bits64 a)
  done

let test_rng_draw_allocation_free () =
  let rng = Rng.create ~seed:5 in
  let sink = ref 0 in
  (* Warm so the first-draw setup is off the measured path. *)
  for _ = 1 to 100 do
    sink := !sink + Rng.int rng 1000
  done;
  Gc.full_major ();
  let a0 = Gc.allocated_bytes () in
  for _ = 1 to 100_000 do
    sink := !sink + Rng.int rng 1000 + Rng.byte rng
  done;
  let da = Gc.allocated_bytes () -. a0 in
  ignore (Sys.opaque_identity !sink : int);
  Alcotest.(check bool) "no allocation across 200k draws" true (da <= 512.0)

(* --- Hashes --- *)

let test_fnv_known () =
  (* FNV-1a 64-bit of "a" is 0xaf63dc4c8601ec8c; we mask to 62 bits. *)
  let h = Hashes.fnv1a_bytes (Bytes.of_string "a") ~pos:0 ~len:1 in
  let expected =
    Int64.to_int (Int64.logand 0xaf63dc4c8601ec8cL (Int64.of_int ((1 lsl 62) - 1)))
  in
  Alcotest.(check int) "fnv(a)" expected h

let test_fnv_slice () =
  let b = Bytes.of_string "xxhelloyy" in
  let h1 = Hashes.fnv1a_bytes b ~pos:2 ~len:5 in
  let h2 = Hashes.fnv1a_bytes (Bytes.of_string "hello") ~pos:0 ~len:5 in
  Alcotest.(check int) "slice equals standalone" h2 h1

let test_fnv_out_of_bounds () =
  Alcotest.check_raises "oob"
    (Invalid_argument "Hashes.fnv1a_bytes: slice out of bounds") (fun () ->
      ignore (Hashes.fnv1a_bytes (Bytes.create 4) ~pos:2 ~len:3))

let test_crc32_known () =
  (* CRC-32 of "123456789" is 0xCBF43926. *)
  Alcotest.(check int32) "crc32 check value" 0xCBF43926l
    (Hashes.crc32_string "123456789")

let test_crc32_empty () =
  Alcotest.(check int32) "crc32 of empty" 0l (Hashes.crc32_string "")

let test_combine_nontrivial () =
  Alcotest.(check bool) "combine differs from inputs" true
    (Hashes.combine 1 2 <> Hashes.combine 2 1)

let test_fold_int () =
  let h = Hashes.fnv1a_int 123456 in
  let f = Hashes.fold_int h ~bits:10 in
  Alcotest.(check bool) "folded in range" true (f >= 0 && f < 1024)

(* --- Stats --- *)

let test_mean () = check_float "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |])

let test_variance () =
  check_float "variance" 2.0 (Stats.variance [| 1.0; 2.0; 3.0; 4.0; 5.0 |])

let test_percentile_median () =
  check_float "median" 3.0 (Stats.median [| 5.0; 1.0; 3.0; 2.0; 4.0 |])

let test_percentile_interpolates () =
  check_float "p25" 1.5 (Stats.percentile [| 1.0; 2.0; 3.0 |] 25.0)

let test_percentile_extremes () =
  let xs = [| 9.0; 1.0; 5.0 |] in
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p100" 9.0 (Stats.percentile xs 100.0)

let test_min_max () =
  let mn, mx = Stats.min_max [| 3.0; -1.0; 7.0 |] in
  check_float "min" (-1.0) mn;
  check_float "max" 7.0 mx

let test_empty_raises () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty array")
    (fun () -> ignore (Stats.mean [||]))

let test_running_matches_batch () =
  let xs = Array.init 100 (fun i -> float_of_int (i * i) /. 7.0) in
  let r = Stats.running_create () in
  Array.iter (Stats.running_add r) xs;
  Alcotest.(check int) "count" 100 (Stats.running_count r);
  Alcotest.(check (float 1e-6)) "mean" (Stats.mean xs) (Stats.running_mean r);
  Alcotest.(check (float 1e-6)) "stdev" (Stats.stdev xs) (Stats.running_stdev r)

(* --- Table --- *)

let test_table_renders () =
  let t = Table.create ~title:"T" [ "a"; "bb" ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "yy"; "22" ];
  let s = Table.to_string t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool) "contains row" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "yy  22"))

let test_table_arity_mismatch () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only one" ])

let test_table_cells () =
  Alcotest.(check string) "pct" "27.00" (Table.cell_pct 0.27);
  Alcotest.(check string) "millions" "25.85" (Table.cell_millions 25.85e6)

(* --- Series --- *)

let test_series_eval_exact () =
  let s = Series.of_points [ (0.0, 0.0); (10.0, 1.0) ] in
  check_float "at sample" 1.0 (Series.eval s 10.0)

let test_series_eval_interpolates () =
  let s = Series.of_points [ (0.0, 0.0); (10.0, 1.0) ] in
  check_float "midpoint" 0.5 (Series.eval s 5.0)

let test_series_eval_clamps () =
  let s = Series.of_points [ (1.0, 2.0); (3.0, 4.0) ] in
  check_float "below" 2.0 (Series.eval s 0.0);
  check_float "above" 4.0 (Series.eval s 100.0)

let test_series_unsorted_input () =
  let s = Series.of_points [ (3.0, 4.0); (1.0, 2.0) ] in
  check_float "sorted internally" 3.0 (Series.eval s 2.0)

let test_series_duplicate_x () =
  let s = Series.of_points [ (1.0, 2.0); (1.0, 9.0); (2.0, 0.0) ] in
  check_float "last wins" 9.0 (Series.eval s 1.0)

let test_series_monotone () =
  Alcotest.(check bool) "monotone" true
    (Series.monotone_nondecreasing
       (Series.of_points [ (0.0, 0.0); (1.0, 0.5); (2.0, 0.5) ]));
  Alcotest.(check bool) "not monotone" false
    (Series.monotone_nondecreasing
       (Series.of_points [ (0.0, 1.0); (1.0, 0.5) ]))

let test_series_knee () =
  let s =
    Series.of_points [ (0.0, 0.0); (50.0, 0.20); (100.0, 0.24); (200.0, 0.25) ]
  in
  match Series.knee s ~threshold:0.05 with
  | Some x -> check_float "knee at 50" 50.0 x
  | None -> Alcotest.fail "expected a knee"

(* --- qcheck properties --- *)

let prop_series_eval_within_bounds =
  QCheck.Test.make ~count:200 ~name:"series eval bounded by sampled ys"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 10) (pair (float_bound_exclusive 100.0) (float_bound_exclusive 1.0)))
        (float_bound_exclusive 120.0))
    (fun (pts, x) ->
      QCheck.assume (pts <> []);
      let s = Series.of_points pts in
      let ys = List.map snd pts in
      let lo = List.fold_left Float.min (List.hd ys) ys in
      let hi = List.fold_left Float.max (List.hd ys) ys in
      let v = Series.eval s x in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~count:200 ~name:"percentile monotone in p"
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 20) (float_bound_exclusive 1000.0))
        (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun (xs, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-9)

let prop_rng_int_in_range =
  QCheck.Test.make ~count:500 ~name:"Rng.int in range"
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng n in
      v >= 0 && v < n)

(* --- Histogram --- *)

let test_histogram_empty_mean () =
  let h = Histogram.create () in
  check_float "empty mean is 0.0, not NaN" 0.0 (Histogram.mean h);
  Alcotest.(check int) "empty percentile is 0" 0 (Histogram.percentile h 99.0);
  Alcotest.(check int) "empty max is 0" 0 (Histogram.max_value h)

let prop_histogram_merge_union =
  QCheck.Test.make ~count:200
    ~name:"merge_into agrees with recording the union"
    QCheck.(
      pair
        (list (int_range 0 1_000_000))
        (list (int_range 0 1_000_000)))
    (fun (xs, ys) ->
      let a = Histogram.create ()
      and b = Histogram.create ()
      and u = Histogram.create () in
      List.iter (Histogram.record a) xs;
      List.iter (Histogram.record b) ys;
      List.iter (Histogram.record u) (xs @ ys);
      Histogram.merge_into ~src:b ~dst:a;
      Histogram.count a = Histogram.count u
      && Histogram.total a = Histogram.total u
      && Histogram.mean a = Histogram.mean u
      && Histogram.max_value a = Histogram.max_value u
      && List.for_all
           (fun p -> Histogram.percentile a p = Histogram.percentile u p)
           [ 0.0; 50.0; 90.0; 99.0; 100.0 ])

let prop_histogram_percentile_monotone =
  QCheck.Test.make ~count:500
    ~name:"histogram percentile monotone in p (endpoints included)"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 50) (int_range 0 1_000_000))
        (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun (xs, (p1, p2)) ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) xs;
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Histogram.percentile h lo <= Histogram.percentile h hi)

let prop_histogram_endpoints_exact =
  QCheck.Test.make ~count:500
    ~name:"percentile 0/100 return the exact recorded endpoints"
    QCheck.(list_of_size Gen.(int_range 1 50) (int_range 0 1_000_000))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) xs;
      let mn = List.fold_left min (List.hd xs) xs
      and mx = List.fold_left max (List.hd xs) xs in
      Histogram.percentile h 0.0 = mn
      && Histogram.percentile h 100.0 = mx
      && Histogram.min_value h = mn
      && Histogram.exact_max h = mx)

let prop_histogram_merge_minmax =
  QCheck.Test.make ~count:500
    ~name:"merge_into carries exact min/max from both sides"
    QCheck.(
      pair (list (int_range 0 1_000_000)) (list (int_range 0 1_000_000)))
    (fun (xs, ys) ->
      let a = Histogram.create ()
      and b = Histogram.create ()
      and u = Histogram.create () in
      List.iter (Histogram.record a) xs;
      List.iter (Histogram.record b) ys;
      List.iter (Histogram.record u) (xs @ ys);
      Histogram.merge_into ~src:b ~dst:a;
      Histogram.min_value a = Histogram.min_value u
      && Histogram.exact_max a = Histogram.exact_max u
      && Histogram.percentile a 0.0 = Histogram.percentile u 0.0
      && Histogram.percentile a 100.0 = Histogram.percentile u 100.0)

let tests =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng int pow2" `Quick test_rng_int_pow2;
    Alcotest.test_case "rng int_in" `Quick test_rng_int_in;
    Alcotest.test_case "rng rejects bad bounds" `Quick test_rng_rejects_bad_bounds;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng uniformity" `Quick test_rng_uniformity;
    Alcotest.test_case "rng float range" `Quick test_rng_float_range;
    Alcotest.test_case "rng shuffle permutes" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "rng exponential" `Quick test_rng_exponential_positive;
    Alcotest.test_case "fnv known vector" `Quick test_fnv_known;
    Alcotest.test_case "fnv slice" `Quick test_fnv_slice;
    Alcotest.test_case "fnv bounds check" `Quick test_fnv_out_of_bounds;
    Alcotest.test_case "crc32 known vector" `Quick test_crc32_known;
    Alcotest.test_case "crc32 empty" `Quick test_crc32_empty;
    Alcotest.test_case "hash combine" `Quick test_combine_nontrivial;
    Alcotest.test_case "fold_int range" `Quick test_fold_int;
    Alcotest.test_case "stats mean" `Quick test_mean;
    Alcotest.test_case "stats variance" `Quick test_variance;
    Alcotest.test_case "stats median" `Quick test_percentile_median;
    Alcotest.test_case "stats percentile interpolation" `Quick test_percentile_interpolates;
    Alcotest.test_case "stats percentile extremes" `Quick test_percentile_extremes;
    Alcotest.test_case "stats min_max" `Quick test_min_max;
    Alcotest.test_case "stats empty raises" `Quick test_empty_raises;
    Alcotest.test_case "stats running accumulator" `Quick test_running_matches_batch;
    Alcotest.test_case "table renders" `Quick test_table_renders;
    Alcotest.test_case "table arity" `Quick test_table_arity_mismatch;
    Alcotest.test_case "table cells" `Quick test_table_cells;
    Alcotest.test_case "series eval exact" `Quick test_series_eval_exact;
    Alcotest.test_case "series interpolation" `Quick test_series_eval_interpolates;
    Alcotest.test_case "series clamping" `Quick test_series_eval_clamps;
    Alcotest.test_case "series unsorted input" `Quick test_series_unsorted_input;
    Alcotest.test_case "series duplicate x" `Quick test_series_duplicate_x;
    Alcotest.test_case "series monotonicity check" `Quick test_series_monotone;
    Alcotest.test_case "series knee" `Quick test_series_knee;
    Alcotest.test_case "histogram empty mean" `Quick test_histogram_empty_mean;
    Alcotest.test_case "rng matches Int64 reference" `Quick
      test_rng_matches_int64_reference;
    Alcotest.test_case "rng split matches reference" `Quick
      test_rng_split_matches_reference;
    Alcotest.test_case "rng draws allocation-free" `Quick
      test_rng_draw_allocation_free;
    QCheck_alcotest.to_alcotest prop_histogram_merge_union;
    QCheck_alcotest.to_alcotest prop_histogram_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_histogram_endpoints_exact;
    QCheck_alcotest.to_alcotest prop_histogram_merge_minmax;
    QCheck_alcotest.to_alcotest prop_series_eval_within_bounds;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_rng_int_in_range;
  ]
