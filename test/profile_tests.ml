(* The per-element attribution profiler's contract, in three parts:

   1. Conservation — for every core, the per-element sums of instructions /
      L3 hits / L3 misses equal the engine window's {!Counters.diff}, the
      per-element cycles sum to [window_cycles], and the per-element
      latency histograms' totals sum to the packet latency total. Exact,
      for random flow sets, seeds and batch sizes.
   2. Purity — attribution reads the simulation but never perturbs it:
      results with [?attrib] are identical to results without.
   3. Determinism — the user-facing exports (folded stacks, hot-spot
      report) are byte-identical under --jobs 4 --batch 32 and
      --jobs 1 --batch 1, because everything is keyed by element name. *)

open Ppp_hw

let kinds = Ppp_apps.App.[ IP; MON; FW; RE; VPN ]

let mk_flows ~config ~seed kind_ixs =
  let heap = Ppp_simmem.Heap.create ~node:0 in
  let rng = Ppp_util.Rng.create ~seed in
  List.mapi
    (fun core ix ->
      let kind = List.nth kinds (ix mod List.length kinds) in
      let label = Printf.sprintf "%s#%d" (Ppp_apps.App.name kind) core in
      let flow =
        Ppp_apps.App.flow kind ~heap ~rng:(Ppp_util.Rng.split rng)
          ~scale:config.Machine.scale ~label ()
      in
      { Engine.core; label; source = Ppp_click.Flow.source flow })
    kind_ixs

let run_attributed ?(reorder_every = 0) ~batch ~seed kind_ixs =
  let config = Machine.tiny in
  let hier = Machine.build config in
  let flows = mk_flows ~config ~seed kind_ixs in
  let flows =
    if reorder_every <= 0 then flows
    else
      (* Relabel every Nth packet as Reordered — the detector's verdict is
         just a tag on the item, so this exercises the partitioned latency
         columns deterministically. *)
      List.map
        (fun (f : Engine.flow) ->
          let inner = f.Engine.source in
          let n = ref 0 in
          let source now =
            match inner now with
            | Engine.Packet t ->
                incr n;
                if !n mod reorder_every = 0 then Engine.Reordered t
                else Engine.Packet t
            | it -> it
          in
          { f with Engine.source })
        flows
  in
  let attrib = Attrib.create ~cores:(Topology.cores config.Machine.topology) in
  let results =
    Engine.run ~attrib ~batch hier ~flows ~warmup_cycles:20_000
      ~measure_cycles:60_000
  in
  (attrib, results)

let sum_elems at ~core read =
  let acc = ref 0 in
  for elem = 0 to Eid.count () - 1 do
    acc := !acc + read at ~core ~elem
  done;
  !acc

let check_conservation name (at, results) =
  List.iter
    (fun (r : Engine.result) ->
      let core = r.Engine.core in
      let ctx what = Printf.sprintf "%s: core %d %s" name core what in
      Alcotest.(check int) (ctx "instructions conserved")
        (Counters.instructions r.Engine.counters)
        (sum_elems at ~core Attrib.instructions);
      Alcotest.(check int) (ctx "L3 hits conserved")
        (Counters.l3_hits r.Engine.counters)
        (sum_elems at ~core Attrib.l3_hits);
      Alcotest.(check int) (ctx "L3 misses conserved")
        (Counters.l3_misses r.Engine.counters)
        (sum_elems at ~core Attrib.l3_misses);
      Alcotest.(check int) (ctx "cycles sum to the window")
        r.Engine.window_cycles
        (sum_elems at ~core Attrib.cycles);
      (* Each in-window packet records its per-element time into each
         touched element's histogram; summed over elements that must
         reproduce the engine's packet latency total exactly. *)
      let lat_total = ref 0 in
      for elem = 0 to Eid.count () - 1 do
        match Attrib.latency at ~core ~elem with
        | Some h -> lat_total := !lat_total + Ppp_util.Histogram.total h
        | None -> ()
      done;
      Alcotest.(check int) (ctx "per-element latency sums to packet latency")
        (Ppp_util.Histogram.total r.Engine.latency)
        !lat_total)
    results

let test_conservation_pair () =
  check_conservation "IP+MON batch 32"
    (run_attributed ~batch:32 ~seed:42 [ 0; 1 ]);
  check_conservation "FW solo batch 1" (run_attributed ~batch:1 ~seed:7 [ 2 ])

let prop_conservation =
  QCheck.Test.make ~count:8
    ~name:"profiler conservation: random flows x seed x batch"
    QCheck.(
      triple
        (list_of_size Gen.(int_range 1 4) (int_bound 100))
        small_nat
        (QCheck.make (QCheck.Gen.oneofl [ 1; 2; 7; 32 ])))
    (fun (kind_ixs, seed, batch) ->
      let at, results = run_attributed ~batch ~seed kind_ixs in
      List.for_all
        (fun (r : Engine.result) ->
          let core = r.Engine.core in
          sum_elems at ~core Attrib.instructions
          = Counters.instructions r.Engine.counters
          && sum_elems at ~core Attrib.l3_hits
             = Counters.l3_hits r.Engine.counters
          && sum_elems at ~core Attrib.l3_misses
             = Counters.l3_misses r.Engine.counters
          && sum_elems at ~core Attrib.cycles = r.Engine.window_cycles)
        results)

(* Attribution must not perturb the simulation: with and without [?attrib],
   the engine's results are identical (the full fingerprint, histograms
   compared via their exact endpoints). *)
let fingerprint (r : Engine.result) =
  ( ( r.Engine.core,
      r.Engine.label,
      r.Engine.packets,
      r.Engine.window_cycles,
      r.Engine.engine_ops ),
    ( Counters.instructions r.Engine.counters,
      Counters.mem_refs r.Engine.counters,
      Counters.l3_hits r.Engine.counters,
      Counters.l3_misses r.Engine.counters ),
    ( Ppp_util.Histogram.count r.Engine.latency,
      Ppp_util.Histogram.total r.Engine.latency,
      Ppp_util.Histogram.percentile r.Engine.latency 0.0,
      Ppp_util.Histogram.percentile r.Engine.latency 100.0 ) )

let test_attrib_pure () =
  let config = Machine.tiny in
  let run ~attrib =
    let hier = Machine.build config in
    let flows = mk_flows ~config ~seed:42 [ 0; 3 ] in
    let attrib =
      if attrib then
        Some (Attrib.create ~cores:(Topology.cores config.Machine.topology))
      else None
    in
    List.map fingerprint
      (Engine.run ?attrib ~batch:32 hier ~flows ~warmup_cycles:20_000
         ~measure_cycles:60_000)
  in
  Alcotest.(check bool)
    "results identical with and without attribution" true
    (run ~attrib:false = run ~attrib:true)

(* The reordered/in-order latency columns partition the latency histogram
   exactly: counts, totals and the extreme percentiles all reconcile. *)
let test_latency_partition () =
  let _, results = run_attributed ~reorder_every:3 ~batch:32 ~seed:42 [ 0; 1 ] in
  List.iter
    (fun (r : Engine.result) ->
      let h = Ppp_util.Histogram.count in
      let t = Ppp_util.Histogram.total in
      Alcotest.(check int) "counts partition"
        (h r.Engine.latency)
        (h r.Engine.latency_inorder + h r.Engine.latency_reordered);
      Alcotest.(check int) "totals partition"
        (t r.Engine.latency)
        (t r.Engine.latency_inorder + t r.Engine.latency_reordered);
      Alcotest.(check bool) "reordered packets actually landed" true
        (h r.Engine.latency = 0 || h r.Engine.latency_reordered > 0);
      Alcotest.(check int) "max is the max of the two columns"
        (Ppp_util.Histogram.exact_max r.Engine.latency)
        (max
           (Ppp_util.Histogram.exact_max r.Engine.latency_inorder)
           (Ppp_util.Histogram.exact_max r.Engine.latency_reordered)))
    results

(* The exports' determinism pin: fig2 profiled under --jobs 4 --batch 32
   renders the same folded stacks and hot-spot report as --jobs 1 --batch 1.
   Element ids differ across runs (registration order depends on domain
   scheduling); keying by name is what makes this hold. *)
let with_jobs n f =
  let prev = Ppp_core.Parallel.configured_jobs () in
  Ppp_core.Parallel.set_jobs n;
  Fun.protect ~finally:(fun () -> Ppp_core.Parallel.set_jobs prev) f

let profile_exports ~jobs ~batch =
  with_jobs jobs (fun () ->
      Ppp_telemetry.Recorder.clear_data ();
      match Ppp_experiments.Registry.find "fig2" with
      | None -> Alcotest.fail "fig2 not registered"
      | Some e ->
          let params =
            Ppp_core.Runner.Params.(
              quick |> with_batch batch |> with_profile true)
          in
          ignore (e.Ppp_experiments.Registry.run ~params ()
                   : Ppp_experiments.Output.t);
          let entries = Ppp_telemetry.Recorder.profile () in
          Ppp_telemetry.Recorder.clear_data ();
          ( Ppp_telemetry.Profile.folded_cycles entries,
            Ppp_telemetry.Profile.folded_l3_misses entries,
            Ppp_telemetry.Profile.top ~title:"fig2" entries ))

let test_export_determinism () =
  let c1, m1, t1 = profile_exports ~jobs:1 ~batch:1 in
  let c4, m4, t4 = profile_exports ~jobs:4 ~batch:32 in
  Alcotest.(check string)
    "folded cycles: jobs 4 batch 32 == jobs 1 batch 1" c1 c4;
  Alcotest.(check string)
    "folded L3 misses: jobs 4 batch 32 == jobs 1 batch 1" m1 m4;
  Alcotest.(check string)
    "hot-spot report: jobs 4 batch 32 == jobs 1 batch 1" t1 t4;
  Alcotest.(check bool) "folded stacks non-empty" true (String.length c1 > 0)

let tests =
  [
    Alcotest.test_case "conservation on pinned workloads" `Quick
      test_conservation_pair;
    QCheck_alcotest.to_alcotest prop_conservation;
    Alcotest.test_case "attribution is pure observation" `Quick
      test_attrib_pure;
    Alcotest.test_case "latency partitions in-order/reordered" `Quick
      test_latency_partition;
    Alcotest.test_case "exports byte-identical across jobs x batch" `Quick
      test_export_determinism;
  ]
