(* Direct unit tests for the exact-match flow cache — the special case the
   lib/classify fast path generalizes. Pinned behaviours: capacity
   rounding, hit/miss counting, the don't-cache-unrouted rule, and the
   direct-mapped conflict (eviction) story. *)

let heap () = Ppp_simmem.Heap.create ~node:0

let ctx () = Ppp_click.Ctx.create ~rng:(Ppp_util.Rng.create ~seed:3)

let packet ~dst ~sport =
  let pkt = Ppp_net.Packet.create 60 in
  Ppp_traffic.Gen.fill_ipv4_udp pkt ~src:0x0A000001 ~dst ~sport ~dport:443
    ~wire_len:64;
  pkt

(* The cache's slot index, recomputed from the public hash (the packing is
   bits 16-57 of the flow hash, direct-mapped). *)
let slot_index ~capacity pkt =
  let key =
    (Ppp_net.Flowid.hash_of_packet pkt lsr 16) land 0x3FFFFFFFFFF
  in
  let key = if key = 0 then 1 else key in
  key land (capacity - 1)

let routed_trie heap =
  let trie = Ppp_apps.Radix_trie.create ~heap ~default_hop:0 () in
  Ppp_apps.Radix_trie.add_route trie ~prefix:0x0B000000 ~plen:8 ~hop:5;
  trie

let test_capacity_rounding () =
  let h = heap () in
  Alcotest.(check int) "100 -> 128" 128
    (Ppp_apps.Flow_cache.capacity (Ppp_apps.Flow_cache.create ~heap:h ~entries:100));
  Alcotest.(check int) "min 16" 16
    (Ppp_apps.Flow_cache.capacity (Ppp_apps.Flow_cache.create ~heap:h ~entries:1));
  Alcotest.check_raises "entries=0 rejected"
    (Invalid_argument "Flow_cache.create") (fun () ->
      ignore (Ppp_apps.Flow_cache.create ~heap:h ~entries:0 : Ppp_apps.Flow_cache.t))

let test_miss_then_hit () =
  let h = heap () in
  let fc = Ppp_apps.Flow_cache.create ~heap:h ~entries:16 in
  let el = Ppp_apps.Flow_cache.lookup_element fc ~trie:(routed_trie h) () in
  let ctx = ctx () in
  let pkt = packet ~dst:0x0B000001 ~sport:1000 in
  (match el.Ppp_click.Element.process ctx pkt with
  | Ppp_click.Element.Forward -> ()
  | Ppp_click.Element.Drop -> Alcotest.fail "routed packet dropped");
  Alcotest.(check int) "hop annotated" 5 (Ppp_net.Packet.get8 pkt 0);
  Alcotest.(check (pair int int)) "first probe misses" (0, 1)
    (Ppp_apps.Flow_cache.hits fc, Ppp_apps.Flow_cache.misses fc);
  ignore (el.Ppp_click.Element.process ctx pkt : Ppp_click.Element.verdict);
  Alcotest.(check (pair int int)) "second probe hits" (1, 1)
    (Ppp_apps.Flow_cache.hits fc, Ppp_apps.Flow_cache.misses fc)

let test_unrouted_not_cached () =
  let h = heap () in
  let fc = Ppp_apps.Flow_cache.create ~heap:h ~entries:16 in
  let el = Ppp_apps.Flow_cache.lookup_element fc ~trie:(routed_trie h) () in
  let ctx = ctx () in
  let pkt = packet ~dst:0xC0000001 ~sport:1000 in
  (match el.Ppp_click.Element.process ctx pkt with
  | Ppp_click.Element.Drop -> ()
  | Ppp_click.Element.Forward -> Alcotest.fail "unrouted packet forwarded");
  ignore (el.Ppp_click.Element.process ctx pkt : Ppp_click.Element.verdict);
  Alcotest.(check (pair int int)) "unrouted never fills the cache" (0, 2)
    (Ppp_apps.Flow_cache.hits fc, Ppp_apps.Flow_cache.misses fc)

let test_conflict_thrash () =
  (* Two routed flows that collide in the direct-mapped slot evict each
     other on every alternation: the eviction-under-conflict story. A
     third, non-colliding flow is unaffected. *)
  let h = heap () in
  let fc = Ppp_apps.Flow_cache.create ~heap:h ~entries:16 in
  let capacity = Ppp_apps.Flow_cache.capacity fc in
  let el = Ppp_apps.Flow_cache.lookup_element fc ~trie:(routed_trie h) () in
  let ctx = ctx () in
  let a = packet ~dst:0x0B000001 ~sport:1000 in
  let idx = slot_index ~capacity a in
  let b =
    (* Find a colliding 5-tuple by scanning source ports. *)
    let rec go sport =
      if sport > 0xFFFF then Alcotest.fail "no colliding flow found"
      else
        let p = packet ~dst:0x0B000002 ~sport in
        if slot_index ~capacity p = idx then p else go (sport + 1)
    in
    go 1001
  in
  let c =
    let rec go sport =
      if sport > 0xFFFF then Alcotest.fail "no conflict-free flow found"
      else
        let p = packet ~dst:0x0B000003 ~sport in
        if slot_index ~capacity p <> idx then p else go (sport + 1)
    in
    go 2000
  in
  let process p =
    ignore (el.Ppp_click.Element.process ctx p : Ppp_click.Element.verdict)
  in
  process a;
  (* miss: fills the slot *)
  process a;
  (* hit *)
  process b;
  (* miss: evicts a *)
  process a;
  (* miss again: the conflict evicted it; evicts b back *)
  process c;
  (* miss: its own slot *)
  process c;
  (* hit: unaffected by the a/b thrash *)
  Alcotest.(check (pair int int)) "colliding flows thrash, disjoint one hits"
    (2, 4)
    (Ppp_apps.Flow_cache.hits fc, Ppp_apps.Flow_cache.misses fc)

let tests =
  [
    Alcotest.test_case "capacity rounding" `Quick test_capacity_rounding;
    Alcotest.test_case "miss then hit" `Quick test_miss_then_hit;
    Alcotest.test_case "unrouted not cached" `Quick test_unrouted_not_cached;
    Alcotest.test_case "direct-mapped conflict thrash" `Quick
      test_conflict_thrash;
  ]
