(* repro — regenerate the paper's tables and figures, or run ad-hoc mixes. *)

open Cmdliner

let params_term =
  let config =
    let doc = "Machine configuration (westmere | scaled | tiny)." in
    Arg.(value & opt string "scaled" & info [ "config" ] ~docv:"NAME" ~doc)
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")
  in
  let warmup =
    Arg.(
      value
      & opt int Ppp_core.Runner.default_params.Ppp_core.Runner.warmup_cycles
      & info [ "warmup" ] ~docv:"CYCLES" ~doc:"Warmup cycles.")
  in
  let measure =
    Arg.(
      value
      & opt int Ppp_core.Runner.default_params.Ppp_core.Runner.measure_cycles
      & info [ "measure" ] ~docv:"CYCLES" ~doc:"Measured cycles.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Quarter-length windows (faster, noisier).")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for independent experiment cells (0 = physical \
             cores, 1 = sequential). Output is byte-identical for any value.")
  in
  let build config seed warmup measure quick jobs =
    match Ppp_hw.Machine.by_name config with
    | None -> `Error (false, Printf.sprintf "unknown config %S" config)
    | Some c ->
        if jobs < 0 then `Error (false, "--jobs must be >= 0")
        else begin
          Ppp_core.Parallel.set_jobs jobs;
          let div = if quick then 4 else 1 in
          `Ok
            {
              Ppp_core.Runner.config = c;
              seed;
              warmup_cycles = warmup / div;
              measure_cycles = measure / div;
              cell = "";
            }
        end
  in
  Term.(ret (const build $ config $ seed $ warmup $ measure $ quick $ jobs))

(* --- telemetry flags (--trace / --metrics / --sample-cycles / --verbose) --- *)

type telemetry_opts = {
  trace : string option;
  metrics : string option;
  sample_cycles : int;  (* 0 = derive from the measurement window *)
  verbose : bool;
}

let telemetry_term =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Export a Chrome trace-event JSON of the run (open in Perfetto \
             or chrome://tracing): counter time series per core on the \
             simulated clock, plus wall-clock runner spans.")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"DIR"
          ~doc:
            "Export machine-readable metrics into $(docv): series.csv \
             (simulated-time counter slices), spans.csv (wall-clock runner \
             spans) and manifest.json (run provenance + per-experiment \
             wall-clock).")
  in
  let sample_cycles =
    Arg.(
      value & opt int 0
      & info [ "sample-cycles" ] ~docv:"K"
          ~doc:
            "Counter-sampling slice length in simulated cycles (0 = \
             measure_cycles / 20). Only meaningful with $(b,--trace) or \
             $(b,--metrics).")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose" ]
          ~doc:
            "Echo per-experiment wall-clock timings to stderr (they are \
             always recorded in the manifest when $(b,--metrics) is \
             given).")
  in
  let build trace metrics sample_cycles verbose =
    if sample_cycles < 0 then `Error (false, "--sample-cycles must be >= 0")
    else `Ok { trace; metrics; sample_cycles; verbose }
  in
  Term.(ret (const build $ trace $ metrics $ sample_cycles $ verbose))

let effective_sample_cycles params t =
  if t.sample_cycles > 0 then t.sample_cycles
  else max 1 (params.Ppp_core.Runner.measure_cycles / 20)

let setup_telemetry params t =
  if t.trace <> None || t.metrics <> None then
    Ppp_telemetry.Recorder.configure
      ~sample_cycles:(effective_sample_cycles params t)
      ~spans:true ()

let run_meta params =
  let open Ppp_core.Runner in
  [
    ("tool", Ppp_telemetry.Json.Str "repro");
    ("machine", Ppp_telemetry.Json.Str params.config.Ppp_hw.Machine.name);
    ("seed", Ppp_telemetry.Json.Int params.seed);
    ("warmup_cycles", Ppp_telemetry.Json.Int params.warmup_cycles);
    ("measure_cycles", Ppp_telemetry.Json.Int params.measure_cycles);
    ( "sample_cycles",
      match Ppp_telemetry.Recorder.sampling () with
      | Some k -> Ppp_telemetry.Json.Int k
      | None -> Ppp_telemetry.Json.Null );
  ]

let finish_telemetry_exn params t =
  (match t.trace with
  | Some path ->
      Ppp_telemetry.Export.write_trace ~path ~meta:(run_meta params);
      Printf.eprintf "wrote Chrome trace to %s (open in ui.perfetto.dev)\n%!"
        path
  | None -> ());
  match t.metrics with
  | Some dir ->
      let run =
        {
          Ppp_telemetry.Manifest.tool = "repro";
          machine = params.Ppp_core.Runner.config.Ppp_hw.Machine.name;
          seed = params.Ppp_core.Runner.seed;
          warmup_cycles = params.Ppp_core.Runner.warmup_cycles;
          measure_cycles = params.Ppp_core.Runner.measure_cycles;
          jobs_configured = Ppp_core.Parallel.configured_jobs ();
          jobs_effective = Ppp_core.Parallel.jobs ();
          sample_cycles = Ppp_telemetry.Recorder.sampling ();
        }
      in
      Ppp_telemetry.Export.write_metrics_dir ~dir ~run;
      Printf.eprintf "wrote series.csv, spans.csv, manifest.json to %s/\n%!"
        dir
  | None -> ()

let finish_telemetry params t =
  (* A bad --trace/--metrics path should fail like any other CLI misuse,
     not as an uncaught exception. *)
  try finish_telemetry_exn params t
  with Sys_error msg ->
    Printf.eprintf "repro: cannot write telemetry output: %s\n%!" msg;
    exit 1

let list_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Machine-readable output: a JSON array of {id, title, \
             paper_ref} objects, for tooling/CI.")
  in
  let run json =
    if json then
      print_endline
        (Ppp_telemetry.Json.to_string (Ppp_experiments.Registry.to_json ()))
    else
      List.iter
        (fun e ->
          Printf.printf "%-10s %-22s %s\n" e.Ppp_experiments.Registry.id
            ("[" ^ e.Ppp_experiments.Registry.paper_ref ^ "]")
            e.Ppp_experiments.Registry.title)
        Ppp_experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments.")
    Term.(const run $ json)

let run_experiment ~verbose params id =
  match Ppp_experiments.Registry.find id with
  | None ->
      Printf.eprintf "unknown experiment %S (try `repro list`)\n" id;
      exit 1
  | Some e ->
      Printf.printf "=== %s (%s): %s ===\n%!" e.Ppp_experiments.Registry.id
        e.Ppp_experiments.Registry.paper_ref e.Ppp_experiments.Registry.title;
      Ppp_telemetry.Recorder.set_experiment e.Ppp_experiments.Registry.id;
      let t0 = Unix.gettimeofday () in
      let out = e.Ppp_experiments.Registry.run ~params () in
      let wall_s = Unix.gettimeofday () -. t0 in
      Printf.printf "%s\n%!" out;
      Ppp_telemetry.Recorder.set_experiment "";
      (* Wall-clock lives in the manifest (structured, --metrics); the
         stderr echo is opt-in so stdout/stderr stay quiet and stdout is
         byte-identical across job counts, seeds being equal. *)
      Ppp_telemetry.Recorder.record_experiment ~id
        ~title:e.Ppp_experiments.Registry.title
        ~paper_ref:e.Ppp_experiments.Registry.paper_ref ~wall_s;
      if verbose then Printf.eprintf "[%s: %.1fs]\n%!" id wall_s

let run_cmd =
  let ids =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"EXPERIMENT")
  in
  let run params telemetry ids =
    setup_telemetry params telemetry;
    List.iter (run_experiment ~verbose:telemetry.verbose params) ids;
    finish_telemetry params telemetry
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one or more experiments by id.")
    Term.(const run $ params_term $ telemetry_term $ ids)

let all_cmd =
  let run params telemetry =
    setup_telemetry params telemetry;
    List.iter
      (fun e ->
        run_experiment ~verbose:telemetry.verbose params
          e.Ppp_experiments.Registry.id)
      Ppp_experiments.Registry.all;
    finish_telemetry params telemetry
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment (the full reproduction).")
    Term.(const run $ params_term $ telemetry_term)

let parse_kinds names =
  List.map
    (fun n ->
      match Ppp_apps.App.of_name n with
      | Some k -> k
      | None ->
          Printf.eprintf
            "unknown flow type %S (IP MON FW RE VPN SYN_MAX SYN:<r>:<i>)\n" n;
          exit 1)
    names

let mix_cmd =
  let kinds =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"FLOW")
  in
  let run params telemetry names =
    setup_telemetry params telemetry;
    let kinds = parse_kinds names in
    let specs =
      List.mapi
        (fun i kind -> Ppp_core.Runner.flow_on ~core:i kind)
        kinds
    in
    let solos =
      List.map
        (fun k -> (k, Ppp_core.Runner.solo ~params k))
        (List.sort_uniq compare kinds)
    in
    let results =
      Ppp_core.Runner.run
        ~params:(Ppp_core.Runner.with_cell params "mix")
        specs
    in
    let t =
      Ppp_util.Table.create
        ~title:"Co-run (one flow per core, data local, socket-filling order)"
        [
          "flow"; "core"; "pps"; "drop (%)"; "L3 refs/s (M)"; "L3 hits/s (M)";
          "cycles/pkt"; "lat p50"; "lat p99";
        ]
    in
    List.iter2
      (fun kind (r : Ppp_hw.Engine.result) ->
        let solo = List.assoc kind solos in
        Ppp_util.Table.add_row t
          [
            Ppp_apps.App.name kind;
            string_of_int r.Ppp_hw.Engine.core;
            Printf.sprintf "%.0f" r.Ppp_hw.Engine.throughput_pps;
            Printf.sprintf "%.2f"
              (100.0 *. Ppp_core.Runner.drop ~solo ~corun:r);
            Printf.sprintf "%.1f" (r.Ppp_hw.Engine.l3_refs_per_sec /. 1e6);
            Printf.sprintf "%.1f" (r.Ppp_hw.Engine.l3_hits_per_sec /. 1e6);
            Printf.sprintf "%.0f"
              (float_of_int r.Ppp_hw.Engine.window_cycles
              /. float_of_int (max 1 r.Ppp_hw.Engine.packets));
            string_of_int
              (Ppp_util.Histogram.percentile r.Ppp_hw.Engine.latency 50.0);
            string_of_int
              (Ppp_util.Histogram.percentile r.Ppp_hw.Engine.latency 99.0);
          ])
      kinds results;
    Ppp_util.Table.print t;
    finish_telemetry params telemetry
  in
  Cmd.v
    (Cmd.info "mix"
       ~doc:"Co-run an ad-hoc set of flows (one per core) and report drops.")
    Term.(const run $ params_term $ telemetry_term $ kinds)

let predict_cmd =
  let target = Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET") in
  let competitors = Arg.(non_empty & pos_right 0 string [] & info [] ~docv:"COMPETITOR") in
  let run params target competitors =
    let t = List.hd (parse_kinds [ target ]) in
    let cs = parse_kinds competitors in
    let targets = List.sort_uniq compare (t :: cs) in
    Printf.printf "profiling %d flow types offline...\n%!" (List.length targets);
    let p = Ppp_core.Predictor.build ~params ~targets () in
    let drop = Ppp_core.Predictor.predict_drop p ~target:t ~competitors:cs in
    Printf.printf
      "predicted drop of %s against [%s]: %.2f%% (predicted throughput %.0f \
       pps)\n"
      (Ppp_apps.App.name t)
      (String.concat ", " (List.map Ppp_apps.App.name cs))
      (100.0 *. drop)
      (Ppp_core.Predictor.predict_throughput p ~target:t ~competitors:cs)
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:
         "Predict a target flow's contention-induced drop against a set of \
          competitors using the paper's offline-profiling method.")
    Term.(const run $ params_term $ target $ competitors)

let capture_cmd =
  let kind = Arg.(required & pos 0 (some string) None & info [] ~docv:"FLOW") in
  let count =
    Arg.(value & opt int 1000 & info [ "count"; "n" ] ~docv:"N" ~doc:"Packets to capture.")
  in
  let out =
    Arg.(value & opt string "capture.pcap" & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output pcap.")
  in
  let run params name count out =
    let kind = List.hd (parse_kinds [ name ]) in
    let heap = Ppp_simmem.Heap.create ~node:0 in
    let rng = Ppp_util.Rng.create ~seed:params.Ppp_core.Runner.seed in
    let built =
      Ppp_apps.App.build kind ~heap ~rng
        ~scale:params.Ppp_core.Runner.config.Ppp_hw.Machine.scale
    in
    let cap = Ppp_traffic.Pcap.create () in
    let pkt = Ppp_net.Packet.create 60 in
    for _ = 1 to count do
      built.Ppp_apps.App.gen pkt;
      Ppp_traffic.Pcap.append cap pkt
    done;
    Ppp_traffic.Pcap.save cap out;
    Printf.printf "wrote %d %s packets to %s\n" count
      (Ppp_apps.App.name kind) out
  in
  Cmd.v
    (Cmd.info "capture"
       ~doc:
         "Write a flow type's generated traffic to a standard pcap file \
          (inspectable with tcpdump/wireshark; replayable with \
          Ppp_traffic.Pcap.replay).")
    Term.(const run $ params_term $ kind $ count $ out)

let () =
  let info =
    Cmd.info "repro" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'Toward Predictable Performance in Software \
         Packet-Processing Platforms' (NSDI 2012)."
  in
  exit
    (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; all_cmd; mix_cmd; predict_cmd; capture_cmd ]))
