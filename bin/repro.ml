(* repro — regenerate the paper's tables and figures, or run ad-hoc mixes. *)

module Cli = Ppp_util.Cli

(* --- shared flags: simulation parameters --- *)

let params_args cli =
  let config =
    Cli.string cli [ "--config" ] ~docv:"NAME"
      ~doc:"Machine configuration (westmere | scaled | tiny)." "scaled"
  in
  let seed = Cli.int cli [ "--seed" ] ~docv:"N" ~doc:"Random seed." 42 in
  let warmup =
    Cli.int cli [ "--warmup" ] ~docv:"CYCLES" ~doc:"Warmup cycles."
      Ppp_core.Runner.default_params.Ppp_core.Runner.warmup_cycles
  in
  let measure =
    Cli.int cli [ "--measure" ] ~docv:"CYCLES" ~doc:"Measured cycles."
      Ppp_core.Runner.default_params.Ppp_core.Runner.measure_cycles
  in
  let quick =
    Cli.flag cli [ "--quick" ]
      ~doc:"Quarter-length windows (faster, noisier)."
  in
  let batch =
    Cli.int cli [ "--batch" ] ~docv:"N"
      ~doc:
        "Engine burst budget: trace ops a scheduled core may retire per \
         scheduling decision. Output is byte-identical for any value >= 1."
      Ppp_core.Runner.default_params.Ppp_core.Runner.batch
  in
  let jobs =
    Cli.int cli [ "--jobs"; "-j" ] ~docv:"N"
      ~doc:
        "Worker domains for independent experiment cells (0 = physical \
         cores, 1 = sequential). Output is byte-identical for any value."
      0
  in
  let classifier =
    Cli.string cli [ "--classifier" ] ~docv:"BACKEND"
      ~doc:
        "Slow-path backend for the classifier experiment (tss | range | \
         all). Other experiments ignore it."
      "all"
  in
  let traffic =
    Cli.string cli [ "--traffic" ] ~docv:"MODEL"
      ~doc:
        "Source model for the traffic experiment (heavy | onoff | churn | \
         all). Other experiments ignore it."
      "all"
  in
  let steering =
    Cli.string cli [ "--steering" ] ~docv:"MODEL"
      ~doc:
        "NIC steering model for the traffic experiment (rss | fdir | all). \
         Other experiments ignore it."
      "all"
  in
  let profile =
    Cli.flag cli [ "--profile" ]
      ~doc:
        "Attribute cycles, instructions, L3 hits/misses and per-packet \
         latency to (core, element) during every run. Pure observation — \
         simulation results are byte-identical with or without it. Exports \
         go to --profile-out (default \"profile\"), and the manifest's \
         profile section when --metrics is given."
  in
  fun () ->
    (match Ppp_hw.Machine.by_name !config with
    | None -> Cli.die cli (Printf.sprintf "unknown config %S" !config)
    | Some c ->
        if !jobs < 0 then Cli.die cli "--jobs must be >= 0";
        if !batch < 1 then Cli.die cli "--batch must be >= 1";
        let classifier =
          match Ppp_core.Runner.classifier_of_name !classifier with
          | Some k -> k
          | None ->
              Cli.die cli
                (Printf.sprintf
                   "unknown --classifier backend %S (tss|range|all)"
                   !classifier)
        in
        let traffic =
          match Ppp_core.Runner.traffic_of_name !traffic with
          | Some m -> m
          | None ->
              Cli.die cli
                (Printf.sprintf
                   "unknown --traffic model %S (heavy|onoff|churn|all)"
                   !traffic)
        in
        let steering =
          match Ppp_core.Runner.steering_of_name !steering with
          | Some s -> s
          | None ->
              Cli.die cli
                (Printf.sprintf "unknown --steering model %S (rss|fdir|all)"
                   !steering)
        in
        Ppp_core.Parallel.set_jobs !jobs;
        let div = if !quick then 4 else 1 in
        Ppp_core.Runner.Params.(
          default |> with_config c |> with_seed !seed
          |> with_windows ~warmup:(!warmup / div) ~measure:(!measure / div)
          |> with_batch !batch |> with_classifier classifier
          |> with_traffic traffic |> with_steering steering
          |> with_profile !profile))

(* --- shared flags: telemetry (--trace / --metrics / --sample-cycles) --- *)

type telemetry_opts = {
  trace : string option;
  metrics : string option;
  profile_out : string option;
  sample_cycles : int;  (* 0 = derive from the measurement window *)
  verbose : bool;
}

let telemetry_args cli =
  let trace =
    Cli.opt_string cli [ "--trace" ] ~docv:"FILE"
      ~doc:
        "Export a Chrome trace-event JSON of the run (open in Perfetto or \
         chrome://tracing): counter time series per core on the simulated \
         clock, plus wall-clock runner spans."
  in
  let metrics =
    Cli.opt_string cli [ "--metrics" ] ~docv:"DIR"
      ~doc:
        "Export machine-readable metrics into DIR: series.csv \
         (simulated-time counter slices), spans.csv (wall-clock runner \
         spans) and manifest.json (run provenance + per-experiment \
         wall-clock)."
  in
  let profile_out =
    Cli.opt_string cli [ "--profile-out" ] ~docv:"DIR"
      ~doc:
        "Where --profile writes its flamegraph-ready exports: \
         profile_cycles.folded and profile_l3_misses.folded (folded stacks \
         for flamegraph.pl / inferno / speedscope) plus top.txt (the \
         hot-spot report). Default \"profile\"."
  in
  let sample_cycles =
    Cli.int cli [ "--sample-cycles" ] ~docv:"K"
      ~doc:
        "Counter-sampling slice length in simulated cycles (0 = \
         measure_cycles / 20). Only meaningful with --trace or --metrics."
      0
  in
  let verbose =
    Cli.flag cli [ "--verbose" ]
      ~doc:
        "Echo per-experiment wall-clock timings to stderr (they are always \
         recorded in the manifest when --metrics is given)."
  in
  fun () ->
    if !sample_cycles < 0 then Cli.die cli "--sample-cycles must be >= 0";
    {
      trace = !trace;
      metrics = !metrics;
      profile_out = !profile_out;
      sample_cycles = !sample_cycles;
      verbose = !verbose;
    }

let effective_sample_cycles params t =
  if t.sample_cycles > 0 then t.sample_cycles
  else max 1 (params.Ppp_core.Runner.measure_cycles / 20)

let setup_telemetry params t =
  if t.trace <> None || t.metrics <> None then
    Ppp_telemetry.Recorder.configure
      ~sample_cycles:(effective_sample_cycles params t)
      ~spans:true ()

let run_meta params =
  let open Ppp_core.Runner in
  [
    ("tool", Ppp_telemetry.Json.Str "repro");
    ("machine", Ppp_telemetry.Json.Str params.config.Ppp_hw.Machine.name);
    ("seed", Ppp_telemetry.Json.Int params.seed);
    ("warmup_cycles", Ppp_telemetry.Json.Int params.warmup_cycles);
    ("measure_cycles", Ppp_telemetry.Json.Int params.measure_cycles);
    ( "sample_cycles",
      match Ppp_telemetry.Recorder.sampling () with
      | Some k -> Ppp_telemetry.Json.Int k
      | None -> Ppp_telemetry.Json.Null );
  ]

let finish_telemetry_exn params t =
  (match t.trace with
  | Some path ->
      Ppp_telemetry.Export.write_trace ~path ~meta:(run_meta params);
      Printf.eprintf "wrote Chrome trace to %s (open in ui.perfetto.dev)\n%!"
        path
  | None -> ());
  (match t.metrics with
  | Some dir ->
      let run =
        {
          Ppp_telemetry.Manifest.tool = "repro";
          machine = params.Ppp_core.Runner.config.Ppp_hw.Machine.name;
          seed = params.Ppp_core.Runner.seed;
          warmup_cycles = params.Ppp_core.Runner.warmup_cycles;
          measure_cycles = params.Ppp_core.Runner.measure_cycles;
          jobs_configured = Ppp_core.Parallel.configured_jobs ();
          jobs_effective = Ppp_core.Parallel.jobs ();
          sample_cycles = Ppp_telemetry.Recorder.sampling ();
        }
      in
      Ppp_telemetry.Export.write_metrics_dir ~dir ~run;
      Printf.eprintf "wrote series.csv, spans.csv, manifest.json to %s/\n%!"
        dir
  | None -> ());
  match
    match t.profile_out with
    | Some dir -> Some dir
    | None ->
        if params.Ppp_core.Runner.profile then Some "profile" else None
  with
  | Some dir ->
      Ppp_telemetry.Export.write_profile_dir ~dir;
      Printf.eprintf
        "wrote profile_cycles.folded, profile_l3_misses.folded, top.txt to \
         %s/\n\
         %!"
        dir
  | None -> ()

let finish_telemetry params t =
  (* A bad --trace/--metrics path should fail like any other CLI misuse,
     not as an uncaught exception. *)
  try finish_telemetry_exn params t
  with Sys_error msg ->
    Printf.eprintf "repro: cannot write telemetry output: %s\n%!" msg;
    exit 1

(* --- list --- *)

let list_main () =
  let cli =
    Cli.create ~prog:"repro list [--json]"
      ~summary:"List available experiments."
  in
  let json =
    Cli.flag cli [ "--json" ]
      ~doc:
        "Machine-readable output: a JSON array of {id, title, paper_ref} \
         objects, for tooling/CI."
  in
  (match Cli.parse cli ~start:2 Sys.argv with
  | [] -> ()
  | a :: _ -> Cli.die cli (Printf.sprintf "unexpected argument %S" a));
  if !json then
    print_endline
      (Ppp_telemetry.Json.to_string (Ppp_experiments.Registry.to_json ()))
  else
    List.iter
      (fun e ->
        Printf.printf "%-10s %-22s %s\n" e.Ppp_experiments.Registry.id
          ("[" ^ e.Ppp_experiments.Registry.paper_ref ^ "]")
          e.Ppp_experiments.Registry.title)
      Ppp_experiments.Registry.all

(* --- run / all --- *)

let find_experiment id =
  match Ppp_experiments.Registry.find id with
  | Some e -> e
  | None ->
      Printf.eprintf "unknown experiment %S (try `repro list`)\n" id;
      exit 1

let run_experiment ~verbose params (e : Ppp_experiments.Registry.t) =
  let id = e.Ppp_experiments.Registry.id in
  Ppp_telemetry.Recorder.set_experiment id;
  let t0 = Unix.gettimeofday () in
  let out = e.Ppp_experiments.Registry.run ~params () in
  let wall_s = Unix.gettimeofday () -. t0 in
  Ppp_telemetry.Recorder.set_experiment "";
  (* Wall-clock lives in the manifest (structured, --metrics); the stderr
     echo is opt-in so stdout/stderr stay quiet and stdout is
     byte-identical across job counts, seeds being equal. *)
  Ppp_telemetry.Recorder.record_experiment ~id
    ~title:e.Ppp_experiments.Registry.title
    ~paper_ref:e.Ppp_experiments.Registry.paper_ref ~wall_s;
  if verbose then Printf.eprintf "[%s: %.1fs]\n%!" id wall_s;
  out

let print_text params ~verbose (e : Ppp_experiments.Registry.t) =
  Printf.printf "=== %s (%s): %s ===\n%!" e.Ppp_experiments.Registry.id
    e.Ppp_experiments.Registry.paper_ref e.Ppp_experiments.Registry.title;
  let out = run_experiment ~verbose params e in
  Printf.printf "%s\n%!" out.Ppp_experiments.Output.text

let json_envelope (e : Ppp_experiments.Registry.t) out =
  Ppp_telemetry.Json.Obj
    [
      ("id", Ppp_telemetry.Json.Str e.Ppp_experiments.Registry.id);
      ("title", Ppp_telemetry.Json.Str e.Ppp_experiments.Registry.title);
      ( "paper_ref",
        Ppp_telemetry.Json.Str e.Ppp_experiments.Registry.paper_ref );
      ("data", out.Ppp_experiments.Output.data);
    ]

let print_json params ~verbose experiments =
  let envelopes =
    List.map
      (fun e -> json_envelope e (run_experiment ~verbose params e))
      experiments
  in
  (* One experiment prints one object; several print an array — either way
     stdout is a single JSON document. *)
  let doc =
    match envelopes with
    | [ one ] -> one
    | many -> Ppp_telemetry.Json.Arr many
  in
  print_endline (Ppp_telemetry.Json.to_string doc)

let run_all_main ~all () =
  let prog, summary, positional =
    if all then
      ("repro all [options]", "Run every experiment (the full reproduction).",
       fun cli -> function
        | [] -> List.map (fun e -> e.Ppp_experiments.Registry.id)
                  Ppp_experiments.Registry.all
        | a :: _ -> Cli.die cli (Printf.sprintf "unexpected argument %S" a))
    else
      ("repro run [options] EXPERIMENT...",
       "Run one or more experiments by id.",
       fun cli -> function
        | [] -> Cli.die cli "expected at least one experiment id"
        | ids -> ids)
  in
  let cli = Cli.create ~prog ~summary in
  let params = params_args cli in
  let telemetry = telemetry_args cli in
  let json =
    Cli.flag cli [ "--json" ]
      ~doc:
        "Print each experiment's structured result (id, title, paper_ref, \
         data) as a single JSON document instead of the rendered tables."
  in
  let ids = positional cli (Cli.parse cli ~start:2 Sys.argv) in
  let params = params () and telemetry = telemetry () in
  let experiments = List.map find_experiment ids in
  setup_telemetry params telemetry;
  if !json then print_json params ~verbose:telemetry.verbose experiments
  else
    List.iter (print_text params ~verbose:telemetry.verbose) experiments;
  finish_telemetry params telemetry

(* --- top --- *)

let top_main () =
  let cli =
    Cli.create ~prog:"repro top [options] EXPERIMENT..."
      ~summary:
        "Run experiments with per-element attribution on and print the \
         top-style hot-spot report: the hottest elements by window cycles \
         and by L3 misses, with window share, miss rate and latency tails."
  in
  let params = params_args cli in
  let k =
    Cli.int cli [ "--top"; "-k" ] ~docv:"N" ~doc:"Rows per report section." 10
  in
  let ids =
    match Cli.parse cli ~start:2 Sys.argv with
    | [] -> Cli.die cli "expected at least one experiment id"
    | ids -> ids
  in
  let params = params () in
  if !k < 1 then Cli.die cli "--top must be >= 1";
  let params = Ppp_core.Runner.Params.with_profile true params in
  let experiments = List.map find_experiment ids in
  List.iter
    (fun (e : Ppp_experiments.Registry.t) ->
      (* One report per experiment: the profile accumulates per cell, so
         drop the previous experiment's entries before running the next. *)
      Ppp_telemetry.Recorder.clear_data ();
      let (_ : Ppp_experiments.Output.t) =
        run_experiment ~verbose:false params e
      in
      print_string
        (Ppp_telemetry.Profile.top ~k:!k ~title:e.Ppp_experiments.Registry.id
           (Ppp_telemetry.Recorder.profile ())))
    experiments

(* --- mix / predict / capture --- *)

let parse_kinds names =
  List.map
    (fun n ->
      match Ppp_apps.App.of_name n with
      | Some k -> k
      | None ->
          Printf.eprintf
            "unknown flow type %S (IP MON FW RE VPN SYN_MAX SYN:<r>:<i>)\n" n;
          exit 1)
    names

let mix_main () =
  let cli =
    Cli.create ~prog:"repro mix [options] FLOW..."
      ~summary:
        "Co-run an ad-hoc set of flows (one per core) and report drops."
  in
  let params = params_args cli in
  let telemetry = telemetry_args cli in
  let names =
    match Cli.parse cli ~start:2 Sys.argv with
    | [] -> Cli.die cli "expected at least one flow type"
    | names -> names
  in
  let params = params () and telemetry = telemetry () in
  setup_telemetry params telemetry;
  let kinds = parse_kinds names in
  let specs =
    List.mapi (fun i kind -> Ppp_core.Runner.flow_on ~core:i kind) kinds
  in
  let solos =
    List.map
      (fun k -> (k, Ppp_core.Runner.solo ~params k))
      (List.sort_uniq compare kinds)
  in
  let results =
    Ppp_core.Runner.run
      ~params:(Ppp_core.Runner.with_cell params "mix")
      specs
  in
  let t =
    Ppp_util.Table.create
      ~title:"Co-run (one flow per core, data local, socket-filling order)"
      [
        "flow"; "core"; "pps"; "drop (%)"; "L3 refs/s (M)"; "L3 hits/s (M)";
        "cycles/pkt"; "lat p50"; "lat p99";
      ]
  in
  List.iter2
    (fun kind (r : Ppp_hw.Engine.result) ->
      let solo = List.assoc kind solos in
      Ppp_util.Table.add_row t
        [
          Ppp_apps.App.name kind;
          string_of_int r.Ppp_hw.Engine.core;
          Printf.sprintf "%.0f" r.Ppp_hw.Engine.throughput_pps;
          Printf.sprintf "%.2f" (100.0 *. Ppp_core.Runner.drop ~solo ~corun:r);
          Printf.sprintf "%.1f" (r.Ppp_hw.Engine.l3_refs_per_sec /. 1e6);
          Printf.sprintf "%.1f" (r.Ppp_hw.Engine.l3_hits_per_sec /. 1e6);
          Printf.sprintf "%.0f"
            (float_of_int r.Ppp_hw.Engine.window_cycles
            /. float_of_int (max 1 r.Ppp_hw.Engine.packets));
          string_of_int
            (Ppp_util.Histogram.percentile r.Ppp_hw.Engine.latency 50.0);
          string_of_int
            (Ppp_util.Histogram.percentile r.Ppp_hw.Engine.latency 99.0);
        ])
    kinds results;
  Ppp_util.Table.print t;
  finish_telemetry params telemetry

let predict_main () =
  let cli =
    Cli.create ~prog:"repro predict [options] TARGET COMPETITOR..."
      ~summary:
        "Predict a target flow's contention-induced drop against a set of \
         competitors using the paper's offline-profiling method."
  in
  let params = params_args cli in
  let target, competitors =
    match Cli.parse cli ~start:2 Sys.argv with
    | target :: (_ :: _ as competitors) -> (target, competitors)
    | _ -> Cli.die cli "expected a target flow and at least one competitor"
  in
  let params = params () in
  let t = List.hd (parse_kinds [ target ]) in
  let cs = parse_kinds competitors in
  let targets = List.sort_uniq compare (t :: cs) in
  Printf.printf "profiling %d flow types offline...\n%!" (List.length targets);
  let p = Ppp_core.Predictor.build ~params ~targets () in
  let drop = Ppp_core.Predictor.predict_drop p ~target:t ~competitors:cs in
  Printf.printf
    "predicted drop of %s against [%s]: %.2f%% (predicted throughput %.0f \
     pps)\n"
    (Ppp_apps.App.name t)
    (String.concat ", " (List.map Ppp_apps.App.name cs))
    (100.0 *. drop)
    (Ppp_core.Predictor.predict_throughput p ~target:t ~competitors:cs)

let capture_main () =
  let cli =
    Cli.create ~prog:"repro capture [options] FLOW"
      ~summary:
        "Write a flow type's generated traffic to a standard pcap file \
         (inspectable with tcpdump/wireshark; replayable with \
         Ppp_traffic.Pcap.replay)."
  in
  let params = params_args cli in
  let count =
    Cli.int cli [ "--count"; "-n" ] ~docv:"N" ~doc:"Packets to capture." 1000
  in
  let out =
    Cli.string cli [ "--output"; "-o" ] ~docv:"FILE" ~doc:"Output pcap."
      "capture.pcap"
  in
  let name =
    match Cli.parse cli ~start:2 Sys.argv with
    | [ name ] -> name
    | _ -> Cli.die cli "expected exactly one flow type"
  in
  let params = params () in
  let kind = List.hd (parse_kinds [ name ]) in
  let heap = Ppp_simmem.Heap.create ~node:0 in
  let rng = Ppp_util.Rng.create ~seed:params.Ppp_core.Runner.seed in
  let built =
    Ppp_apps.App.build kind ~heap ~rng
      ~scale:params.Ppp_core.Runner.config.Ppp_hw.Machine.scale
  in
  let cap = Ppp_traffic.Pcap.create () in
  let pkt = Ppp_net.Packet.create 60 in
  let fill = Ppp_traffic.Source.to_gen built.Ppp_apps.App.source in
  for _ = 1 to !count do
    fill pkt;
    Ppp_traffic.Pcap.append cap pkt
  done;
  Ppp_traffic.Pcap.save cap !out;
  Printf.printf "wrote %d %s packets to %s\n" !count
    (Ppp_apps.App.name kind) !out

(* --- monitor --- *)

let float_arg cli r ~name =
  match float_of_string_opt !r with
  | Some v -> v
  | None -> Cli.die cli (Printf.sprintf "%s expects a number, got %S" name !r)

let print_monitor_events det =
  List.iter
    (fun (e : Ppp_monitor.Detector.event) ->
      let detail =
        match e.Ppp_monitor.Detector.e_kind with
        | Ppp_monitor.Detector.Flow_degraded { measured_drop; predicted_drop }
          ->
            Printf.sprintf "measured drop %.1f%% vs predicted %.1f%%"
              (100.0 *. measured_drop) (100.0 *. predicted_drop)
        | Ppp_monitor.Detector.Hidden_aggressor
            { measured_refs_per_sec; profiled_refs_per_sec } ->
            Printf.sprintf "%.1fM L3 refs/s vs %.1fM profiled"
              (measured_refs_per_sec /. 1e6)
              (profiled_refs_per_sec /. 1e6)
        | Ppp_monitor.Detector.Recovered { condition } -> condition ^ " cleared"
      in
      Printf.printf "  epoch %3d @ %d cy  %-10s core %d  %-17s %s\n"
        e.Ppp_monitor.Detector.e_epoch e.Ppp_monitor.Detector.e_t_cycles
        e.Ppp_monitor.Detector.e_flow e.Ppp_monitor.Detector.e_core
        (Ppp_monitor.Detector.kind_name e.Ppp_monitor.Detector.e_kind)
        detail)
    (Ppp_monitor.Detector.events det)

let monitor_main () =
  let cli =
    Cli.create ~prog:"repro monitor [options] FLOW..."
      ~summary:
        "Co-run an ad-hoc set of flows (one per core) under the online \
         contention monitor: profile each flow solo, stream the co-run \
         through the prediction-violation and hidden-aggressor detectors, \
         and report verdicts."
  in
  let params = params_args cli in
  let telemetry = telemetry_args cli in
  let hysteresis =
    Cli.int cli [ "--hysteresis" ] ~docv:"K"
      ~doc:"Consecutive slices needed to arm or release an alarm." 3
  in
  let margin =
    Cli.string cli [ "--margin" ] ~docv:"FRAC"
      ~doc:
        "Hidden-aggressor margin: fractional excess over the profiled L3 \
         refs/sec that counts as aggressive."
      "0.5"
  in
  let drop_margin =
    Cli.string cli [ "--drop-margin" ] ~docv:"FRAC"
      ~doc:
        "Prediction-violation margin: absolute drop excess over the \
         predicted drop that counts as degraded."
      "0.1"
  in
  let monitor_out =
    Cli.opt_string cli [ "--monitor-out" ] ~docv:"DIR"
      ~doc:
        "Write the monitor's interpreted outputs into DIR: alerts.json \
         (typed events, verdicts, throttle recommendations) and monitor.csv \
         (per-slice timeline). Both are byte-deterministic."
  in
  let closed_loop =
    Cli.flag cli [ "--closed-loop" ]
      ~doc:
        "After the monitored run, apply the detector's throttle-budget \
         recommendations and re-run under the monitor to verify recovery."
  in
  let names =
    match Cli.parse cli ~start:2 Sys.argv with
    | [] -> Cli.die cli "expected at least one flow type"
    | names -> names
  in
  let params = params () and telemetry = telemetry () in
  if !hysteresis < 1 then Cli.die cli "--hysteresis must be >= 1";
  let margin = float_arg cli margin ~name:"--margin" in
  let drop_margin = float_arg cli drop_margin ~name:"--drop-margin" in
  setup_telemetry params telemetry;
  let kinds = parse_kinds names in
  let specs =
    List.mapi (fun i kind -> Ppp_core.Runner.flow_on ~core:i kind) kinds
  in
  let uniq = List.sort_uniq compare kinds in
  Printf.printf "profiling %d flow types offline...\n%!" (List.length uniq);
  let predictor =
    Ppp_core.Predictor.build ~params
      ~levels:Ppp_experiments.Monitor_exp.default_levels ~targets:uniq ()
  in
  let solos =
    List.map (fun k -> (k, Ppp_core.Profile.solo ~params k)) uniq
  in
  let det_config =
    {
      (Ppp_monitor.Detector.default_config
         ~sample_cycles:(effective_sample_cycles params telemetry))
      with
      Ppp_monitor.Detector.hysteresis = !hysteresis;
      aggressor_margin = margin;
      drop_margin;
    }
  in
  let profiles =
    List.mapi
      (fun i kind ->
        Ppp_monitor.Detector.profile_of ~predictor ~core:i
          (List.assoc kind solos))
      kinds
  in
  let freq_hz =
    params.Ppp_core.Runner.config.Ppp_hw.Machine.costs.Ppp_hw.Costs.freq_hz
  in
  let monitored_run ~cell ?wrap () =
    let det =
      Ppp_monitor.Detector.create ~config:det_config ~freq_hz profiles
    in
    let _ =
      Ppp_core.Runner.run
        ~params:(Ppp_core.Runner.with_cell params cell)
        ~probe:(Ppp_monitor.Detector.probe det) ?wrap specs
    in
    Ppp_monitor.Detector.finalize det;
    if Ppp_telemetry.Recorder.sampling () <> None then
      Ppp_telemetry.Recorder.add_events
        (Ppp_monitor.Report.to_telemetry_events ~cell det);
    det
  in
  let det = monitored_run ~cell:"monitor" () in
  Ppp_util.Table.print (Ppp_monitor.Report.verdict_table det);
  print_monitor_events det;
  (match !monitor_out with
  | Some dir ->
      Ppp_telemetry.Export.write_monitor_dir ~dir
        ~alerts:(Ppp_monitor.Report.alerts_json det)
        ~timeline_csv:(Ppp_monitor.Report.timeline_csv det);
      Printf.eprintf "wrote alerts.json, monitor.csv to %s/\n%!" dir
  | None -> ());
  (if !closed_loop then
     match Ppp_monitor.Detector.recommendations det with
     | [] ->
         Printf.printf
           "\nclosed loop: no throttle recommendations; nothing to apply\n"
     | recs ->
         (* First recommendation per core wins: it is the budget the alert
            asked for at detection time. *)
         let budgets =
           List.fold_left
             (fun acc (r : Ppp_monitor.Detector.recommendation) ->
               if List.mem_assoc r.Ppp_monitor.Detector.r_core acc then acc
               else
                 (r.Ppp_monitor.Detector.r_core,
                  r.Ppp_monitor.Detector.r_budget_l3_refs_per_sec)
                 :: acc)
             [] recs
         in
         Printf.printf "\nclosed loop: throttling %s\n%!"
           (String.concat ", "
              (List.map
                 (fun (core, budget) ->
                   Printf.sprintf "core %d to %.1fM L3 refs/s" core
                     (budget /. 1e6))
                 (List.rev budgets)));
         let wrap hier ~core source =
           match List.assoc_opt core budgets with
           | Some budget ->
               Ppp_core.Throttle.l3_budget_source
                 ~budget_l3_refs_per_sec:budget ~hier ~core ~freq_hz source
           | None -> source
         in
         let det2 = monitored_run ~cell:"monitor/closed-loop" ~wrap () in
         Ppp_util.Table.print (Ppp_monitor.Report.verdict_table det2);
         print_monitor_events det2;
         (match !monitor_out with
         | Some dir ->
             let dir = Filename.concat dir "closed_loop" in
             Ppp_telemetry.Export.write_monitor_dir ~dir
               ~alerts:(Ppp_monitor.Report.alerts_json det2)
               ~timeline_csv:(Ppp_monitor.Report.timeline_csv det2);
             Printf.eprintf "wrote alerts.json, monitor.csv to %s/\n%!" dir
         | None -> ()));
  finish_telemetry params telemetry

(* --- dispatch --- *)

let toplevel_usage =
  "repro — reproduction of 'Toward Predictable Performance in Software \
   Packet-Processing Platforms' (NSDI 2012).\n\
   usage: repro COMMAND [options] [args]\n\
  \  list     List available experiments.\n\
  \  run      Run one or more experiments by id.\n\
  \  all      Run every experiment (the full reproduction).\n\
  \  mix      Co-run an ad-hoc set of flows (one per core).\n\
  \  top      Profile experiments and print the per-element hot-spot report.\n\
  \  monitor  Co-run flows under the online contention monitor.\n\
  \  predict  Predict contention-induced drop from offline profiles.\n\
  \  capture  Write a flow type's generated traffic to a pcap file.\n\
   Run `repro COMMAND --help` for the command's options.\n"

let () =
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "" with
  | "list" -> list_main ()
  | "run" -> run_all_main ~all:false ()
  | "all" -> run_all_main ~all:true ()
  | "mix" -> mix_main ()
  | "top" -> top_main ()
  | "monitor" -> monitor_main ()
  | "predict" -> predict_main ()
  | "capture" -> capture_main ()
  | "--help" | "-h" ->
      print_string toplevel_usage;
      exit 0
  | "" ->
      prerr_string toplevel_usage;
      exit 2
  | cmd ->
      prerr_endline ("repro: unknown command " ^ cmd);
      prerr_string toplevel_usage;
      exit 2
