(* Quickstart: build a packet-processing flow from a Click-style config
   string, run it solo on the simulated platform, and read its profile —
   the "hello world" of the library.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Pick a machine. [scaled] is the paper's dual-socket Westmere scaled
     down 8x so experiments run in seconds. *)
  let config = Ppp_hw.Machine.scaled in
  let hier = Ppp_hw.Machine.build config in

  (* 2. Describe the packet processing with the Click-like config language.
     Element classes come from the registry that ppp.apps populates. *)
  Ppp_apps.App.register_all ();
  let chain =
    "FromDevice(0) -> CheckIPHeader -> RadixIPLookup(16384, 512) -> DecIPTTL \
     -> FlowStats(12500) -> ToDevice(0)"
  in
  let heap = Ppp_simmem.Heap.create ~node:0 in
  let rng = Ppp_util.Rng.create ~seed:1 in
  let elements =
    match Ppp_click.Config.parse chain with
    | Error e -> failwith e
    | Ok decls -> (
        let ctx =
          {
            Ppp_click.Config.Registry.heap;
            rng = Ppp_util.Rng.copy rng;
            scale = config.Ppp_hw.Machine.scale;
          }
        in
        match Ppp_click.Config.instantiate ctx decls with
        | Error e -> failwith e
        | Ok elements -> elements)
  in
  Printf.printf "chain: %s\n%!" chain;

  (* 3. Attach traffic. A generator fills packets in place; here random
     5-tuples over the same deterministic route pool the lookup element
     built (seed 0x51CC5EED), so every packet is routable. *)
  let pool = Ppp_apps.Route_pool.make ~seed:0x51CC5EED ~n16:512 ~routes:16384 in
  let gen_rng = Ppp_util.Rng.split rng in
  let gen pkt =
    let f = Ppp_util.Rng.int gen_rng 12500 in
    let h = Ppp_util.Hashes.fnv1a_int f in
    Ppp_traffic.Gen.fill_ipv4_udp pkt
      ~src:(0x0A000000 lor (h land 0xFFFFFF))
      ~dst:(Ppp_apps.Route_pool.dst_of_flow pool f)
      ~sport:(1024 + (h lsr 24 land 0x3FFF))
      ~dport:(1024 + (h lsr 40 land 0x3FFF))
      ~wire_len:64
  in

  (* 4. Wrap everything into a flow on core 0 and run it to steady state.
     [create_gen] wraps the bare closure in a [Ppp_traffic.Source.t]; use
     [Flow.create ~source] directly for sources with flow identity. *)
  let flow =
    Ppp_click.Flow.create_gen ~heap ~rng:(Ppp_util.Rng.split rng) ~label:"demo"
      ~gen ~elements ()
  in
  let results =
    Ppp_hw.Engine.run hier
      ~flows:
        [ { Ppp_hw.Engine.core = 0; label = "demo"; source = Ppp_click.Flow.source flow } ]
      ~warmup_cycles:3_000_000 ~measure_cycles:10_000_000
  in

  (* 5. Read the hardware counters, Oprofile-style. *)
  List.iter
    (fun (r : Ppp_hw.Engine.result) ->
      let c = r.Ppp_hw.Engine.counters in
      let per_packet n = float_of_int n /. float_of_int (max 1 r.Ppp_hw.Engine.packets) in
      Printf.printf "throughput:      %.0f packets/sec\n" r.Ppp_hw.Engine.throughput_pps;
      Printf.printf "L3 refs/sec:     %.1fM (hits %.1fM)\n"
        (r.Ppp_hw.Engine.l3_refs_per_sec /. 1e6)
        (r.Ppp_hw.Engine.l3_hits_per_sec /. 1e6);
      Printf.printf "per packet:      %.1f L1 hits, %.1f L2 hits, %.1f L3 refs, %.1f misses\n"
        (per_packet (Ppp_hw.Counters.l1_hits c))
        (per_packet (Ppp_hw.Counters.l2_hits c))
        (per_packet (Ppp_hw.Counters.l3_refs c))
        (per_packet (Ppp_hw.Counters.l3_misses c));
      Printf.printf "forwarded/dropped: %d/%d\n" (Ppp_click.Flow.forwarded flow)
        (Ppp_click.Flow.dropped flow))
    results
