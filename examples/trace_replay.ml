(* Capture-and-replay: write a workload to a standard pcap file, load it
   back, and drive a flow with the replayed trace instead of a synthetic
   generator — how you would evaluate the platform on your own traffic.

   Run with: dune exec examples/trace_replay.exe *)

let () =
  let config = Ppp_hw.Machine.scaled in
  let scale = config.Ppp_hw.Machine.scale in
  let rng = Ppp_util.Rng.create ~seed:7 in

  (* 1. Capture 4096 packets of MON traffic into a pcap. *)
  let capture_heap = Ppp_simmem.Heap.create ~node:1 in
  let built = Ppp_apps.App.build Ppp_apps.App.MON ~heap:capture_heap ~rng ~scale in
  let cap = Ppp_traffic.Pcap.create () in
  let pkt = Ppp_net.Packet.create 60 in
  let fill = Ppp_traffic.Source.to_gen built.Ppp_apps.App.source in
  for _ = 1 to 4096 do
    fill pkt;
    Ppp_traffic.Pcap.append cap pkt
  done;
  let path = Filename.temp_file "ppp_trace" ".pcap" in
  Ppp_traffic.Pcap.save cap path;
  Printf.printf "captured %d packets -> %s (%d bytes)\n%!"
    (Ppp_traffic.Pcap.length cap) path
    (Bytes.length (Ppp_traffic.Pcap.to_bytes cap));

  (* 2. Load it back and replay it through a fresh MON flow. *)
  let replayed =
    match Ppp_traffic.Pcap.load path with
    | Ok c -> c
    | Error e -> failwith e
  in
  let heap = Ppp_simmem.Heap.create ~node:0 in
  let flow_built = Ppp_apps.App.build Ppp_apps.App.MON ~heap ~rng ~scale in
  let flow =
    Ppp_click.Flow.create ~heap ~rng:(Ppp_util.Rng.split rng) ~label:"replay"
      ~source:(Ppp_traffic.Pcap.replay replayed)
      ~elements:flow_built.Ppp_apps.App.elements ()
  in
  let hier = Ppp_hw.Machine.build config in
  let results =
    Ppp_hw.Engine.run hier
      ~flows:
        [
          {
            Ppp_hw.Engine.core = 0;
            label = "replay";
            source = Ppp_click.Flow.source flow;
          };
        ]
      ~warmup_cycles:2_000_000 ~measure_cycles:8_000_000
  in
  List.iter
    (fun (r : Ppp_hw.Engine.result) ->
      Printf.printf
        "replayed at %.0f pps — L3 %.1fM refs/s, latency p50/p99 = %d/%d \
         cycles\n"
        r.Ppp_hw.Engine.throughput_pps
        (r.Ppp_hw.Engine.l3_refs_per_sec /. 1e6)
        (Ppp_util.Histogram.percentile r.Ppp_hw.Engine.latency 50.0)
        (Ppp_util.Histogram.percentile r.Ppp_hw.Engine.latency 99.0))
    results;
  Sys.remove path
